//! Building a custom instrumented application directly against the
//! simulator API — including nonblocking communication overlap and a
//! heterogeneous machine (one slow node).
//!
//! ```sh
//! cargo run --example custom_app
//! ```

use limba::analysis::Analyzer;
use limba::model::ActivityKind;
use limba::mpisim::{MachineConfig, ProgramBuilder, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const RANKS: usize = 8;

    // A hand-written SPMD program: every rank posts a nonblocking halo
    // send/recv pair with its right neighbor, overlaps the transfer with
    // interior work, waits, does boundary work, and allreduces.
    let mut pb = ProgramBuilder::new(RANKS);
    let interior = pb.add_region("interior update");
    let boundary = pb.add_region("boundary update");
    let residual = pb.add_region("residual");
    pb.spmd(|rank, mut ops| {
        let right = (rank + 1) % RANKS;
        let left = (rank + RANKS - 1) % RANKS;
        ops.enter(interior);
        // Nonblocking ring exchange: safe regardless of message size
        // because nothing blocks until the waits.
        ops.isend(right, 256 << 10, 1).irecv(left, 2);
        ops.compute(0.08); // interior cells, overlapped with the transfer
        ops.wait(1).wait(2);
        ops.leave(interior);
        ops.enter(boundary).compute(0.01).leave(boundary);
        ops.enter(residual).allreduce(8).leave(residual);
    });
    let program = pb.build()?;

    // Machine: 8 ranks, one of which (rank 3) runs at 60 % speed — a
    // thermally throttled or oversubscribed node.
    let machine = MachineConfig::new(RANKS).with_cpu_speed(3, 0.6);
    let out = Simulator::new(machine).run(&program)?;
    println!(
        "makespan {:.4} s, {} messages, {} collectives",
        out.stats.makespan, out.stats.messages, out.stats.collectives
    );

    // The analysis pins the slow node without being told about it.
    let reduced = out.reduce()?;
    let report = Analyzer::new()
        .with_cluster_k(0)
        .analyze(&reduced.measurements)?;
    let m = &reduced.measurements;
    let slice = m
        .processor_slice(interior, ActivityKind::Computation)
        .expect("interior computes");
    let slowest = slice
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("has ranks")
        .0;
    println!("slowest computation on rank {slowest} (machine's slow node is rank 3)");
    assert_eq!(slowest, 3);

    for candidate in &report.findings.tuning_candidates {
        println!(
            "tuning candidate: {} (ID_C {:.5}, SID_C {:.5})",
            candidate.name, candidate.id, candidate.sid
        );
    }
    Ok(())
}
