//! The post-mortem tool workflow: instrument (simulate) a stencil run,
//! write a tracefile to disk, read it back, validate it, reduce it to
//! measurements — including the counting parameters — and analyze.
//!
//! ```sh
//! cargo run --example trace_workflow
//! ```

use limba::analysis::Analyzer;
use limba::model::CountKind;
use limba::mpisim::{MachineConfig, Simulator};
use limba::trace;
use limba::workloads::{stencil::StencilConfig, Imbalance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Run an instrumented 4×4 stencil with a hotspot subdomain.
    let config = StencilConfig::new(4, 4)
        .with_iterations(8)
        .with_imbalance(Imbalance::Hotspot {
            rank: 5,
            factor: 3.0,
        });
    let program = config.build_program()?;
    let output = Simulator::new(MachineConfig::new(16)).run(&program)?;

    // 2. Write the tracefile (binary) and read it back.
    let path = std::env::temp_dir().join("limba-stencil.trace");
    trace::binary::write(&output.trace, std::fs::File::create(&path)?)?;
    println!(
        "tracefile: {} ({} events, {} bytes)",
        path.display(),
        output.trace.events().len(),
        std::fs::metadata(&path)?.len()
    );
    let loaded = trace::binary::read(std::fs::File::open(&path)?)?;
    loaded.validate()?;

    // 3. Reduce to the t_ijp matrix plus message counts.
    let reduced = trace::reduce(&loaded)?;
    let m = &reduced.measurements;
    println!(
        "measurements: {} regions × {} activities × {} processors",
        m.regions(),
        m.activities().len(),
        m.processors()
    );
    let total_bytes: f64 = m
        .region_ids()
        .map(|r| reduced.counts.region_total(r, CountKind::BytesSent))
        .sum();
    println!("total bytes sent: {total_bytes}");

    // 4. Analyze. The hotspot should surface as the most imbalanced
    //    processor and inflate the stencil-update region's indices.
    let report = Analyzer::new().analyze(m)?;
    if let Some((proc, loops)) = report.findings.processors.most_frequently_imbalanced {
        println!("most frequently imbalanced processor: {proc} (on {loops} regions)");
    }
    for candidate in &report.findings.tuning_candidates {
        println!(
            "tuning candidate: {} (ID_C = {:.5}, SID_C = {:.5})",
            candidate.name, candidate.id, candidate.sid
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
