//! Watching imbalance *grow*: a particle code whose population drifts
//! into one subdomain, analyzed window by window with the evolution
//! extension of the methodology.
//!
//! ```sh
//! cargo run --example evolution_study
//! ```

use limba::analysis::evolution::{imbalance_evolution, Trend};
use limba::model::ActivityKind;
use limba::mpisim::{MachineConfig, Simulator};
use limba::stats::dispersion::DispersionKind;
use limba::trace::reduce_windows;
use limba::workloads::{irregular::IrregularConfig, Imbalance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Particles progressively cluster into rank 5's subdomain.
    let config = IrregularConfig::new(16).with_steps(10).with_drift(
        Imbalance::Hotspot {
            rank: 5,
            factor: 8.0,
        },
        0.12,
    );
    let program = config.build_program()?;
    let out = Simulator::new(MachineConfig::new(16)).run(&program)?;

    // Slice the run into windows and track each activity's weighted
    // dispersion over time.
    let windows = reduce_windows(&out.trace, 10)?;
    let matrices: Vec<_> = windows.into_iter().map(|w| w.measurements).collect();
    let evolution = imbalance_evolution(&matrices, DispersionKind::Euclidean, 0.02)?;

    println!("window-by-window weighted dispersion (ID_A per window):\n");
    for series in &evolution.series {
        let values: Vec<String> = series
            .values
            .iter()
            .map(|v| match v {
                Some(v) => format!("{v:.3}"),
                None => "  -  ".to_string(),
            })
            .collect();
        println!(
            "{:<16} [{}]  slope {:+.4}/window → {:?}",
            series.activity.to_string(),
            values.join(" "),
            series.slope,
            series.trend
        );
    }

    let growing = evolution.growing();
    println!("\nactivities with growing imbalance: {growing:?}");
    assert!(
        growing.contains(&ActivityKind::Computation),
        "the drifting population should show up as growing computation imbalance"
    );
    if let Some(comp) = evolution.series_of(ActivityKind::Computation) {
        assert_eq!(comp.trend, Trend::Growing);
    }
    println!("→ rebalancing mid-run (dynamic load balancing) would pay off here.");
    Ok(())
}
