//! The streaming pipeline end to end: simulate → frame stream →
//! windowed reduce → analyze, with no tracefile and no materialized
//! trace anywhere in between — then the same run through the classic
//! materializing path, to show the results are identical.
//!
//! ```sh
//! cargo run --example streaming_reduce
//! ```

use limba::analysis::Analyzer;
use limba::mpisim::{MachineConfig, Simulator};
use limba::stream::{stream_reduce, StreamConfig};
use limba::trace::{reduce_checked, reduce_windows};
use limba::workloads::{stencil::StencilConfig, Imbalance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ranks = 64;
    let windows = 8;
    let program = StencilConfig::new(8, 8)
        .with_iterations(6)
        .with_imbalance(Imbalance::LinearSkew { spread: 0.6 })
        .build_program()?;
    let sim = Simulator::new(MachineConfig::new(ranks));

    // Streamed: events flow through bounded channels of binary frames
    // and fold straight into the reductions as rounds retire. Memory
    // stays O(channel depth × frame + windows × ranks) no matter how
    // long the run is.
    let cfg = StreamConfig {
        frame_events: 1024,
        windows: Some(windows),
        ..StreamConfig::default()
    };
    let streamed = stream_reduce(&sim, &program, None, None, None, &cfg)?;
    println!(
        "streamed {} events ({} ranks) through frames of {}: makespan {:.4} s",
        streamed.scan.events, ranks, cfg.frame_events, streamed.output.stats.makespan
    );

    // Materialized: the reference path builds the full trace in memory,
    // then reduces it.
    let reference = sim.run(&program)?;
    let salvaged = reduce_checked(&reference.trace)?;
    let sliced = reduce_windows(&reference.trace, windows)?;

    // Same numbers, bit for bit.
    assert_eq!(streamed.output.stats, reference.stats);
    assert_eq!(
        streamed.salvaged.reduced.measurements,
        salvaged.reduced.measurements
    );
    assert_eq!(streamed.salvaged.reduced.counts, salvaged.reduced.counts);
    let windowed = streamed.windows.as_deref().expect("windows requested");
    assert_eq!(windowed.len(), sliced.len());
    for (s, m) in windowed.iter().zip(&sliced) {
        assert_eq!(s.measurements, m.measurements);
        assert_eq!(s.counts, m.counts);
    }
    println!("streamed reductions match the materialized path exactly");

    // The report comes out of the streamed fold alone.
    let report = Analyzer::new().with_cluster_k(0).analyze_with_counts(
        &streamed.salvaged.reduced.measurements,
        &streamed.salvaged.reduced.counts,
    )?;
    println!(
        "\ntotal time {:.2} s, heaviest region {:?}, dominant activity {}",
        report.coarse.total_seconds,
        report.coarse.heaviest_region_name,
        report.coarse.dominant_activity
    );
    for candidate in report.findings.tuning_candidates.iter().take(3) {
        println!("tuning candidate: {}", candidate.name);
    }

    // And the materialized analysis agrees with it.
    let reference_report = Analyzer::new()
        .with_cluster_k(0)
        .analyze_with_counts(&salvaged.reduced.measurements, &salvaged.reduced.counts)?;
    assert_eq!(
        limba::analysis::snapshot::canonical(&report),
        limba::analysis::snapshot::canonical(&reference_report)
    );
    println!("analysis report matches the materialized path exactly");
    Ok(())
}
