//! The serving layer end to end, entirely in-process: start the
//! ingestion server on a loopback socket, stream three tenants' runs
//! into it concurrently — each a live simulation written straight into
//! the socket, never materialized — then query the line protocol for
//! alerts and reports, disconnect one run mid-stream, salvage it, and
//! resume it to the byte-identical final report.
//!
//! ```sh
//! cargo run --example serve_ingest
//! ```

use limba::mpisim::{MachineConfig, Simulator};
use limba::serve::client::{self, PushStatus};
use limba::serve::{PushSession, ServeConfig, ServeError, Server};
use limba::workloads::{
    cfd::CfdConfig, master_worker::MasterWorkerConfig, stencil::StencilConfig, Imbalance,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Port 0: the OS picks a free port; server.addr() reports it.
    let server = Server::start("127.0.0.1:0", ServeConfig::default())?;
    let addr = server.addr().to_string();
    println!("serving on {addr}\n");

    // Three tenants push concurrently, one thread each. Every push
    // drives the simulator's streaming entry point with a sink that
    // writes frames straight into the TCP socket: the trace is never
    // resident on the client, and the server folds it as it arrives.
    let pushes: Vec<(&str, &str)> = vec![
        ("aero", "cfd-nightly"),
        ("grid", "stencil-sweep"),
        ("queue", "worker-farm"),
    ];
    std::thread::scope(|scope| {
        for (tenant, run) in &pushes {
            let addr = addr.clone();
            scope.spawn(move || {
                let outcome = push_simulation(&addr, tenant, run).expect("push succeeds");
                println!(
                    "{tenant}/{run}: {}",
                    match outcome {
                        PushStatus::Complete => "complete",
                        PushStatus::Salvaged => "salvaged",
                    }
                );
            });
        }
    });

    // The one-line query protocol: status, alerts, reports.
    println!("\n{}", client::query(&addr, "STATUS")?.trim_end());
    println!("\nonline alerts for aero/cfd-nightly:");
    print!("{}", client::query(&addr, "ALERTS aero cfd-nightly")?);
    println!("\nfinal report for grid/stencil-sweep:");
    print!("{}", client::query(&addr, "REPORT grid stencil-sweep")?);

    // A completed run's served report is byte-identical to the offline
    // analysis of the same bytes — it *is* a replay of the spool.
    let digest = client::query(&addr, "DIGEST aero cfd-nightly")?;
    println!(
        "\nJSON digest (first 120 chars): {}…",
        &digest[..120.min(digest.len())]
    );

    // Disconnect mid-stream: push only a prefix of a run's bytes and
    // walk away. The server salvages what arrived and leaves the run
    // resumable.
    let program = CfdConfig::new(16)
        .with_imbalance(Imbalance::LinearSkew { spread: 0.4 })
        .build_program()?;
    let sim = Simulator::new(MachineConfig::new(16));
    let mut bytes = Vec::new();
    {
        let mut sink = limba::trace::WriteSink::new(&mut bytes);
        let out = sim.run_streaming_configured(&program, None, None, None, &mut sink, 64);
        out.map_err(|e| format!("simulation: {e}"))?;
    }
    let cut = bytes.len() / 2;
    let prefix =
        std::env::temp_dir().join(format!("limba-serve-ingest-{}.trc", std::process::id()));
    std::fs::write(&prefix, &bytes[..cut])?;
    let session = PushSession::connect(&addr, "aero", "resumable")?;
    let outcome = session.push_file(&prefix)?;
    std::fs::remove_file(&prefix)?;
    println!(
        "\naero/resumable after disconnect at byte {cut}: {}",
        match outcome.status {
            PushStatus::Salvaged => "salvaged, resumable",
            PushStatus::Complete => "complete",
        }
    );

    // Reconnect: the handshake returns the spooled offset, the
    // deterministic producer regenerates the stream, and the client
    // skips exactly the bytes the server already holds.
    let session = PushSession::connect(&addr, "aero", "resumable")?;
    println!("resume offset from handshake: {}", session.offset());
    let outcome = session.push_sink(|sink| {
        sim.run_streaming_configured(&program, None, None, None, sink, 64)
            .map(|_| ())
            .map_err(|e| ServeError::State(e.to_string()))
    })?;
    println!(
        "aero/resumable after resume: {}",
        match outcome.status {
            PushStatus::Complete => "complete — report byte-identical to offline analysis",
            PushStatus::Salvaged => "salvaged",
        }
    );

    server.shutdown()?;
    println!("\nserver stopped");
    Ok(())
}

/// Streams one live simulation into the server for `tenant`/`run`.
fn push_simulation(addr: &str, tenant: &str, run: &str) -> Result<PushStatus, ServeError> {
    let (ranks, program) = match run {
        "cfd-nightly" => (
            32,
            CfdConfig::new(32)
                .with_imbalance(Imbalance::LinearSkew { spread: 0.5 })
                .build_program(),
        ),
        "stencil-sweep" => (
            16,
            StencilConfig::new(4, 4)
                .with_imbalance(Imbalance::RandomJitter { amplitude: 0.2 })
                .build_program(),
        ),
        _ => (
            8,
            MasterWorkerConfig::new(8)
                .with_tasks(64)
                .with_imbalance(Imbalance::Hotspot {
                    rank: 3,
                    factor: 3.0,
                })
                .build_program(),
        ),
    };
    let program = program.map_err(|e| ServeError::State(e.to_string()))?;
    let sim = Simulator::new(MachineConfig::new(ranks));
    let session = PushSession::connect(addr, tenant, run)?;
    let outcome = session.push_sink(|sink| {
        sim.run_streaming_configured(&program, None, None, None, sink, 1024)
            .map(|_| ())
            .map_err(|e| ServeError::State(e.to_string()))
    })?;
    Ok(outcome.status)
}
