//! A tour of the statistical machinery: majorization, Lorenz curves,
//! T-transforms, and how every index of dispersion responds to a
//! progressive rebalancing — the theory of Section 3 made executable.
//!
//! ```sh
//! cargo run --example majorization_playground
//! ```

use limba::stats::dispersion::{DispersionIndex, DispersionKind};
use limba::stats::majorization::{compare, lorenz_curve, t_transform, MajorizationOrder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A badly imbalanced 8-processor load (seconds of computation).
    let mut load = vec![9.0, 1.0, 0.5, 0.5, 0.5, 0.25, 0.25, 0.0];
    println!("initial load: {load:?}\n");

    println!(
        "{:<10} {}",
        "step",
        DispersionKind::ALL
            .iter()
            .map(|k| format!("{:>10}", k.name()))
            .collect::<String>()
    );
    let print_row = |label: &str, data: &[f64]| {
        let cells: String = DispersionKind::ALL
            .iter()
            .map(|k| format!("{:>10.4}", k.index(data).unwrap()))
            .collect();
        println!("{label:<10} {cells}");
    };
    print_row("start", &load);

    // Repeatedly apply Robin Hood (T-) transforms: move work from the
    // most loaded to the least loaded processor. Majorization theory
    // guarantees every Schur-convex index decreases monotonically.
    for step in 1..=4 {
        let max = (0..load.len())
            .max_by(|&a, &b| load[a].total_cmp(&load[b]))
            .unwrap();
        let min = (0..load.len())
            .min_by(|&a, &b| load[a].total_cmp(&load[b]))
            .unwrap();
        let amount = (load[max] - load[min]) / 3.0;
        let moved = t_transform(&load, max, min, amount)?;
        assert_eq!(compare(&moved, &load)?, MajorizationOrder::LessSpread);
        load = moved;
        print_row(&format!("robin #{step}"), &load);
    }

    // The Lorenz curve visualizes the remaining inequality; write it as
    // an SVG next to the terminal output.
    let curve = lorenz_curve(&load)?;
    let svg = limba::viz::svg::lorenz_svg(&curve, "load after rebalancing");
    let path = std::env::temp_dir().join("limba-lorenz.svg");
    std::fs::write(&path, svg)?;
    println!("\nLorenz curve written to {}", path.display());

    // Incomparability: the majorization order is only partial.
    let a = [6.0, 2.0, 2.0];
    let b = [5.0, 4.0, 1.0];
    println!("compare {a:?} vs {b:?}: {:?}", compare(&a, &b)?);
    Ok(())
}
