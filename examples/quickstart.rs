//! Quickstart: analyze the paper's case study in a few lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use limba::analysis::Analyzer;
use limba::calibrate::paper::paper_measurements;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 7-loop × 4-activity × 16-processor measurements of the PACT
    // 2003 case study, reconstructed from the published tables.
    let measurements = paper_measurements()?;

    // Run the whole methodology: coarse-grain profile, clustering, the
    // three dissimilarity views, pattern diagrams, findings.
    let report = Analyzer::new().analyze(&measurements)?;

    // The headline answers.
    println!(
        "heaviest region:    {} ({:.1}% of wall clock)",
        report.coarse.heaviest_region_name,
        report.coarse.heaviest_region_fraction * 100.0
    );
    println!("dominant activity:  {}", report.coarse.dominant_activity);
    if let Some((kind, id)) = report.findings.most_imbalanced_activity {
        println!("most imbalanced activity: {kind} (ID_A = {id:.5})");
    }
    if let Some(candidate) = report.findings.tuning_candidates.first() {
        println!(
            "tuning candidate:   {} (SID_C = {:.5}{})",
            candidate.name,
            candidate.sid,
            if candidate.is_heaviest {
                ", the program core"
            } else {
                ""
            }
        );
    }

    // Or print everything the tool knows.
    println!("\n{}", limba::viz::report::render(&report));
    Ok(())
}
