//! Fault injection: perturb a run with stragglers, a lossy network,
//! and a crashed rank, then analyze what is left of the trace.
//!
//! ```sh
//! cargo run --example fault_injection
//! ```

use limba::analysis::Analyzer;
use limba::mpisim::{FaultPlan, MachineConfig, Simulator};
use limba::workloads::cfd::CfdConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's CFD proxy on a 16-rank machine.
    let ranks = 16;
    let program = CfdConfig::new(ranks).with_iterations(3).build_program()?;
    let sim = Simulator::new(MachineConfig::new(ranks));

    // A clean run first: its makespan anchors the fault windows.
    let clean = sim.run(&program)?;
    let horizon = clean.stats.makespan;
    println!("clean makespan:   {horizon:.4} s");

    // The fault plan. Plans can also be parsed from TOML files
    // (`FaultPlan::parse_toml`, or `limba simulate --faults plan.toml`)
    // or taken from canned presets (`--faults preset:chaos`); this one
    // is built in code:
    //  * rank 8 computes at half speed through the first half of the
    //    run (an OS-jitter straggler);
    //  * every channel loses 5% of transmission attempts, retried with
    //    exponential backoff;
    //  * rank 15 fail-stops at 85% of the clean makespan.
    let plan = FaultPlan::new(2003)
        .with_slowdown(8, 0.0, horizon * 0.5, 2.0)
        .with_message_loss(0.05, 4, horizon * 0.01, 2.0)
        .with_crash(15, horizon * 0.85);

    // Same program, same machine, faulted run. Both engines honor the
    // plan bit-identically — `run_polling_with_faults` would produce
    // the same trace byte for byte.
    let faulted = sim.run_with_faults(&program, &plan)?;
    println!("faulted makespan: {:.4} s", faulted.stats.makespan);
    let report = &faulted.faults;
    for &(rank, time) in &report.crashes {
        println!("rank {rank} crashed at {time:.4} s");
    }
    println!(
        "{} ranks interrupted, {} attempts dropped, {} messages retried",
        report.interrupted.len(),
        report.dropped_attempts,
        report.retried_messages
    );

    // The crash truncated rank 15's trace (and everyone blocked on it).
    // `reduce_checked` salvages the partial streams instead of erroring:
    // open regions are closed at each rank's last recorded event, and
    // the coverage table says whose measurements are lower bounds.
    let salvaged = faulted.reduce_checked()?;
    println!("truncated ranks:  {:?}", salvaged.incomplete_ranks());

    // The usual methodology runs unchanged on the salvaged matrix; the
    // rendered report gains a "data coverage" section.
    let analysis = Analyzer::new()
        .analyze_with_counts(&salvaged.reduced.measurements, &salvaged.reduced.counts)?;
    println!(
        "\n{}",
        limba::viz::report::render_with_coverage(&analysis, &salvaged.coverage)
    );
    Ok(())
}
