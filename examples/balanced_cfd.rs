//! In-loop dynamic load balancing: run the skewed CFD proxy under each
//! of the three policies, compare against the unbalanced run, and
//! render the migration ledger — the workflow behind
//! `limba simulate cfd --balance preset:stealing`.
//!
//! ```sh
//! cargo run --example balanced_cfd
//! ```

use limba::analysis::Analyzer;
use limba::mpisim::{BalancePlan, MachineConfig, Simulator};
use limba::workloads::cfd::CfdConfig;
use limba::workloads::Imbalance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The CFD proxy with a strong linear skew: the last rank gets 25%
    // more work than nominal, the first 25% less. Exactly the shape
    // in-loop balancing exists for.
    let ranks = 8;
    let program = CfdConfig::new(ranks)
        .with_iterations(3)
        .with_imbalance(Imbalance::LinearSkew { spread: 0.5 })
        .build_program()?;
    let sim = Simulator::new(MachineConfig::new(ranks));

    let base = sim.run(&program)?;
    println!("unbalanced makespan: {:.4} s", base.stats.makespan);

    // Three policies, one contract: at every compute boundary the
    // policy sees the shared load view and proposes migrations; the
    // executor accepts only strictly profitable ones, so a balanced
    // run is never slower than the unbalanced one. Decisions are pure
    // functions of (policy state, load view, SplitMix64 seed) — both
    // engines replay them bit-identically, and `run_polling_configured`
    // would produce the same trace byte for byte.
    let plans = [
        BalancePlan::stealing(2003, 1.15),
        BalancePlan::diffusion(2003, 0.5),
        BalancePlan::anticipatory(2003, 8, 0.25),
    ];
    let mut best: Option<(BalancePlan, f64)> = None;
    for plan in plans {
        let out = sim.run_with_balance(&program, &plan)?;
        println!(
            "{:<32} makespan {:.4} s  ({} migrations, {:.3} nominal s moved, {} declined)",
            plan.summary(),
            out.stats.makespan,
            out.balance.migrations,
            out.balance.moved_seconds,
            out.balance.declined
        );
        if best.as_ref().is_none_or(|(_, m)| out.stats.makespan < *m) {
            best = Some((plan, out.stats.makespan));
        }
    }

    // Re-run the winner and show the full report: the standard
    // methodology plus the "rebalancing actions" section with the
    // per-rank local/donated/received ledger. The ledger conserves
    // work exactly — donated == received == moved.
    let (winner, makespan) = best.expect("three plans ran");
    println!(
        "\nbest policy: {} ({:+.2}% vs unbalanced)\n",
        winner.summary(),
        (base.stats.makespan - makespan) / base.stats.makespan * 100.0
    );
    let out = sim.run_with_balance(&program, &winner)?;
    let salvaged = out.reduce_checked()?;
    let report = Analyzer::new()
        .analyze_with_counts(&salvaged.reduced.measurements, &salvaged.reduced.counts)?;
    print!(
        "{}",
        limba::viz::report::render_with_balance(&report, &out.balance, &salvaged.coverage)
    );
    Ok(())
}
