//! Automated top-down bottleneck localization over nested regions: an
//! AMR-style code whose refinement concentrates work two levels deep, and
//! the Paradyn-flavoured drill-down that finds it without being told.
//!
//! ```sh
//! cargo run --example drilldown_search
//! ```

use limba::analysis::hierarchy::{drilldown, RegionTree};
use limba::mpisim::{MachineConfig, Simulator};
use limba::stats::dispersion::DispersionKind;
use limba::trace::region_parents;
use limba::workloads::{amr::AmrConfig, Imbalance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // time step → { solve → { flux, update }, io }; the refined patches
    // all live on rank 5, so only the flux kernel is imbalanced.
    let config = AmrConfig::new(16)
        .with_steps(3)
        .with_refinement(Imbalance::Hotspot {
            rank: 5,
            factor: 6.0,
        });
    let out = Simulator::new(MachineConfig::new(16)).run(&config.build_program()?)?;

    // Recover the region tree from the trace's observed nesting.
    let parents = region_parents(&out.trace)?;
    let tree = RegionTree::from_parents(parents)?;
    let reduced = out.reduce()?;

    println!("region tree (from the trace):");
    fn print_node(
        tree: &RegionTree,
        m: &limba::model::Measurements,
        r: limba::model::RegionId,
        depth: usize,
    ) {
        println!("{}{}", "  ".repeat(depth), m.region_info(r).name());
        for c in tree.children(r) {
            print_node(tree, m, c, depth + 1);
        }
    }
    for root in tree.roots() {
        print_node(&tree, &reduced.measurements, root, 1);
    }

    let dd = drilldown(&reduced.measurements, &tree, DispersionKind::Euclidean, 0.5)?;
    println!("\ndrill-down path:");
    for (depth, step) in dd.path.iter().enumerate() {
        println!(
            "{}↳ {} (inclusive SID_C {:.5}, {:.0}% of program)",
            "  ".repeat(depth),
            step.name,
            step.sid,
            step.fraction_of_program * 100.0
        );
    }
    let culprit = dd.culprit().expect("an imbalanced region exists");
    println!("\nlocalized culprit: {}", culprit.name);
    assert_eq!(culprit.name, "flux");
    Ok(())
}
